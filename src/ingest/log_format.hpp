// On-disk record formats for the log-structured ingest tier (DESIGN.md §14).
//
// Log segments are flat arrays of fixed 32-byte records. Every record is an
// *effective* operation — the ack path only assigns a sequence number and
// writes a record when the op changed the abstract set (insert of an absent
// key, remove of a present key) — so a key's record history is a strict
// PUT/DEL alternation in sequence order, which is what makes batched merge
// apply and crash replay simple (ingest.hpp, recovery.cpp).
//
// Records carry a CRC32 over their first 28 bytes; a torn tail (partial
// write at the moment of a crash) fails the CRC or the length check and is
// truncated by the segment reader. Byte order is native: segments are
// recovered on the machine that wrote them (trial-scoped durability, not an
// interchange format).
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace lsg::ingest {

using Key = uint64_t;
using Value = uint64_t;

/// Record operation codes.
enum class LogOp : uint32_t {
  kPut = 1,  // insert of an absent key (binds value)
  kDel = 2,  // remove of a present key
};

struct LogRecord {
  uint64_t seq = 0;    // global sequence number (dense over effective ops)
  uint64_t key = 0;
  uint64_t value = 0;  // 0 for kDel
  uint32_t op = 0;     // LogOp
  uint32_t crc = 0;    // CRC32 over the first 28 bytes
};
static_assert(sizeof(LogRecord) == 32, "log records are fixed 32-byte cells");

inline constexpr size_t kRecordBytes = sizeof(LogRecord);

/// Software CRC32 (reflected 0xEDB88320), slice-by-8: eight words of table
/// lookups per 8 input bytes replace a byte-serial dependency chain — the
/// per-append CRC sits on the ingest ack path. Tables generated at first
/// use; values are identical to the classic byte-wise form.
inline uint32_t crc32(const void* data, size_t len, uint32_t seed = 0) {
  static const std::array<std::array<uint32_t, 256>, 8> tables = [] {
    std::array<std::array<uint32_t, 256>, 8> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[0][i] = c;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      for (int j = 1; j < 8; ++j) {
        t[j][i] = (t[j - 1][i] >> 8) ^ t[0][t[j - 1][i] & 0xFF];
      }
    }
    return t;
  }();
  uint32_t c = ~seed;
  const auto* p = static_cast<const unsigned char*>(data);
  if constexpr (std::endian::native == std::endian::little) {
    while (len >= 8) {
      uint64_t w;
      __builtin_memcpy(&w, p, 8);
      w ^= c;
      c = tables[7][w & 0xFF] ^ tables[6][(w >> 8) & 0xFF] ^
          tables[5][(w >> 16) & 0xFF] ^ tables[4][(w >> 24) & 0xFF] ^
          tables[3][(w >> 32) & 0xFF] ^ tables[2][(w >> 40) & 0xFF] ^
          tables[1][(w >> 48) & 0xFF] ^ tables[0][(w >> 56) & 0xFF];
      p += 8;
      len -= 8;
    }
  }
  for (size_t i = 0; i < len; ++i) {
    c = tables[0][(c ^ p[i]) & 0xFF] ^ (c >> 8);
  }
  return ~c;
}

/// Stamp a record's CRC field (over everything before it).
inline void seal_record(LogRecord& r) {
  r.crc = crc32(&r, offsetof(LogRecord, crc));
}

inline bool record_valid(const LogRecord& r) {
  return r.crc == crc32(&r, offsetof(LogRecord, crc)) &&
         (r.op == static_cast<uint32_t>(LogOp::kPut) ||
          r.op == static_cast<uint32_t>(LogOp::kDel)) &&
         r.seq != 0;
}

inline LogRecord make_record(uint64_t seq, Key k, Value v, LogOp op) {
  LogRecord r;
  r.seq = seq;
  r.key = k;
  r.value = op == LogOp::kPut ? v : 0;
  r.op = static_cast<uint32_t>(op);
  seal_record(r);
  return r;
}

/// --- checkpoint file format ---------------------------------------------
///
/// ckpt_<gen>.ckpt = CkptHeader, `count` CkptItems, CkptFooter. The footer
/// CRC covers the header and every item, computed streaming by the writer;
/// checkpoints are written to a .tmp path and renamed into place, so a
/// mid-checkpoint crash leaves only an ignorable temp file and the previous
/// checkpoint stays authoritative (crash.hpp kMidCheckpoint).

inline constexpr uint64_t kCkptMagic = 0x4C53474B43505431ull;  // "LSGKCPT1"

struct CkptHeader {
  uint64_t magic = kCkptMagic;
  uint64_t watermark = 0;  // W: every op with seq <= W is reflected in items
};

struct CkptItem {
  uint64_t key = 0;
  uint64_t value = 0;
};

struct CkptFooter {
  uint64_t count = 0;  // CkptItems between header and footer
  uint32_t crc = 0;    // CRC32 over header + items
  uint32_t pad = 0;
};

}  // namespace lsg::ingest
