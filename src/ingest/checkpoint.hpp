// Checkpoint file I/O (write-temp-then-rename) and log-directory recovery
// scanning. The templated apply side lives in ingest.hpp; everything here is
// plain file handling so it compiles once into lsg_ingest.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ingest/log_format.hpp"
#include "ingest/stats.hpp"

namespace lsg::ingest {

/// Streaming checkpoint writer: header(watermark), items, CRC footer — into
/// `dir/ckpt_<gen>.tmp`, renamed to .ckpt by finish(). A process death
/// before finish() leaves only the temp file, which the recovery scan
/// ignores (the kMidCheckpoint crash hook fires between the first item batch
/// and the rename).
class CheckpointWriter {
 public:
  CheckpointWriter() = default;
  ~CheckpointWriter();
  CheckpointWriter(const CheckpointWriter&) = delete;
  CheckpointWriter& operator=(const CheckpointWriter&) = delete;

  bool open(const std::string& dir, uint64_t gen, uint64_t watermark);
  bool add(const std::pair<Key, Value>* items, size_t n);
  /// Footer + flush + rename into place. Returns the final path.
  bool finish(std::string& out_path);
  void abandon();  // close + delete the temp file

  uint64_t items_written() const { return count_; }

 private:
  void* file_ = nullptr;  // std::FILE*
  std::string tmp_path_;
  std::string final_path_;
  uint64_t count_ = 0;
  uint32_t crc_ = 0;
};

/// Parse a checkpoint file. Returns false (leaving outputs untouched) when
/// the file is missing, truncated, or fails the CRC.
bool read_checkpoint(const std::string& path, uint64_t& watermark,
                     std::vector<std::pair<Key, Value>>& items);

/// Everything recovery needs from a log directory: the newest valid
/// checkpoint (older and invalid ones ignored) and every surviving segment
/// record with seq > watermark, sorted by seq. `stats.seq_gaps` counts
/// missing sequence numbers in (watermark, max_seq] — ops lost in unsealed
/// buffers; replay is gap-tolerant (DESIGN.md §14).
struct RecoveredDir {
  uint64_t watermark = 0;
  std::vector<std::pair<Key, Value>> checkpoint_items;
  std::vector<LogRecord> replay;  // sorted by seq, all seq > watermark
  /// Per owning tid, one past the highest surviving segment file index.
  /// Surviving files keep their names after recovery, and tids recur across
  /// processes, so a recovered tier must seed each slot's next_file_index
  /// from this or its first seals truncate durable records from the
  /// previous run.
  std::unordered_map<int, uint64_t> next_file_index;
  RecoveryStats stats;
};

/// Scan `dir`. Returns false only when the directory cannot be read (a
/// missing/empty dir recovers to an empty state successfully).
bool scan_log_dir(const std::string& dir, RecoveredDir& out);

/// Checkpoint file name for generation `gen`.
std::string checkpoint_file_name(uint64_t gen);

/// Delete checkpoint files in `dir` with generation < `keep_gen` (checkpoint
/// GC: only the newest checkpoint is ever read). Best effort.
void delete_checkpoints_below(const std::string& dir, uint64_t keep_gen);

}  // namespace lsg::ingest
