#!/usr/bin/env python3
"""ASCII-plot bench results without a plotting stack (stdlib only).

Three modes:

CSV throughput series (legacy, from the benches' LSG_CSV output):
    tools/plot_results.py fig2.csv [--metric ops_per_ms]
one lane per algorithm, thread count on the x axis.

Latency percentiles (from the telemetry layer's trials.jsonl records,
produced by `lsg_cli --obs` / LSG_OBS=1):
    tools/plot_results.py latency obs_out/trials.jsonl [--op insert]
one bar per (algorithm, threads, percentile).

Throughput over time (from a per-trial *_timeline.jsonl artifact):
    tools/plot_results.py timeline obs_out/<id>_timeline.jsonl \
        [--metric ops_per_ms]
one row per timeline sample; also works for locality, cas_success_rate,
reclaim_pending or any cumulative event column.

Scan shape (from a per-trial <id>_hist.json artifact, requires a trial
run with --scan-frac > 0):
    tools/plot_results.py scan obs_out/<id>_hist.json
two bucketed histograms: elements returned per scan (scan_len) and
collect passes per scan (scan_retries; 1 = converged without re-scan).

Trace span summary (from a per-trial <id>_trace.json artifact, produced
by `lsg_cli --trace` / LSG_TRACE=1; the file itself loads in
ui.perfetto.dev):
    tools/plot_results.py trace obs_out/<id>_trace.json
one row per span kind: count, total time, and mean duration.
"""

import argparse
import csv
import json
import os
import sys
from collections import defaultdict

WIDTH = 60

MODES = ("latency", "timeline", "scan", "trace")
PERCENTILE_KEYS = ["p50", "p90", "p99", "p999"]


def bar(value, peak, width=WIDTH):
    if peak <= 0:
        return ""
    return "#" * max(1, round(width * value / peak))


# --- legacy CSV mode --------------------------------------------------------


def load_csv(path, metric):
    series = defaultdict(list)  # algorithm -> [(threads, value)]
    with open(path, newline="") as f:
        for row in csv.DictReader(f):
            try:
                series[row["algorithm"]].append(
                    (int(row["threads"]), float(row[metric]))
                )
            except (KeyError, ValueError) as e:
                sys.exit(f"bad row in {path}: {e}")
    for points in series.values():
        points.sort()
    return series


def render_csv(series, metric):
    peak = max(v for pts in series.values() for _, v in pts)
    if peak <= 0:
        sys.exit("nothing to plot")
    print(f"{metric} (full bar = {peak:.1f})")
    for algo in sorted(series):
        print(f"\n{algo}")
        for threads, value in series[algo]:
            print(f"  {threads:>4} | {bar(value, peak)} {value:.1f}")


# --- latency mode (trials.jsonl) -------------------------------------------


def load_trials(path):
    trials = []
    with open(path) as f:
        for n, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                trials.append(json.loads(line))
            except json.JSONDecodeError as e:
                sys.exit(f"{path}:{n}: bad JSON record: {e}")
    if not trials:
        sys.exit(f"{path}: no trial records")
    return trials


def render_latency(trials, op_filter, percentiles):
    rows = []  # (label, percentile, value_us)
    for t in trials:
        lat = t.get("obs", {}).get("latency_us", {})
        if not lat:
            continue
        label = f"{t.get('algorithm', '?')} t{t.get('threads', '?')}"
        for op, stats in sorted(lat.items()):
            if op_filter and op != op_filter:
                continue
            for p in percentiles:
                if p in stats:
                    rows.append((f"{label} {op}", p, stats[p]))
    if not rows:
        sys.exit(
            "no latency data (were the trials run with --obs / LSG_OBS=1"
            + (f" and do they include op '{op_filter}'" if op_filter else "")
            + ")?"
        )
    peak = max(v for _, _, v in rows)
    width = max(len(label) for label, _, _ in rows)
    print(f"latency, us (full bar = {peak:.2f})")
    last = None
    for label, p, v in rows:
        if label != last:
            print(f"\n{label}")
            last = label
        print(f"  {p:>5} | {bar(v, peak)} {v:.2f}")
    del width


def render_timeline(path, metric):
    samples = load_trials(path)
    points = []
    for s in samples:
        if metric not in s:
            sys.exit(f"{path}: sample has no '{metric}' "
                     f"(columns: {', '.join(sorted(samples[0]))})")
        points.append((s.get("t_us", 0), float(s[metric])))
    peak = max(v for _, v in points)
    print(f"{metric} over time (full bar = {peak:.1f})")
    print(f"{'t_ms':>8}")
    for t_us, v in points:
        print(f"{t_us / 1000.0:>8.1f} | {bar(v, peak)} {v:.1f}")


# --- scan mode (<id>_hist.json) --------------------------------------------


def render_value_hist(name, hist, unit):
    print(f"\n{name} (count={hist['count']}, mean={hist['mean']:.1f}, "
          f"p50={hist['p50']}, p99={hist['p99']}, max={hist['max']} {unit})")
    buckets = hist.get("buckets", [])
    if not buckets:
        return
    peak = max(c for _, c in buckets)
    for i, (lo, count) in enumerate(buckets):
        # Log-bucketed: the bucket covers [lo, next_lo); the last one is
        # open-ended up to the recorded max.
        hi = buckets[i + 1][0] - 1 if i + 1 < len(buckets) else hist["max"]
        label = f"{lo}" if hi <= lo else f"{lo}-{hi}"
        print(f"  {label:>12} | {bar(count, peak)} {count}")


def render_scan(path):
    with open(path) as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            sys.exit(f"{path}: bad JSON: {e}")
    if "scan_len" not in doc:
        sys.exit(f"{path}: no scan histograms (was the trial run with "
                 "--scan-frac > 0 and --obs / LSG_OBS=1?)")
    render_value_hist("scan_len, elements per scan", doc["scan_len"], "keys")
    if "scan_retries" in doc:
        render_value_hist(
            "scan_retries, collect passes per scan (1 = no re-scan)",
            doc["scan_retries"], "passes")


# --- trace mode (<id>_trace.json) ------------------------------------------


def render_trace(path):
    with open(path) as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            sys.exit(f"{path}: bad JSON: {e}")
    events = [e for e in doc.get("traceEvents", []) if e.get("ph") == "X"]
    if not events:
        sys.exit(f"{path}: no complete ('ph':'X') span events (was the "
                 "trial run with --trace / LSG_TRACE=1?)")
    by_kind = defaultdict(lambda: [0, 0.0])  # name -> [count, total_us]
    threads = set()
    for e in events:
        agg = by_kind[(e.get("cat", "?"), e["name"])]
        agg[0] += 1
        agg[1] += float(e.get("dur", 0.0))
        threads.add((e.get("pid", 0), e.get("tid", 0)))
    dropped = doc.get("otherData", {}).get("dropped_spans", 0)
    print(f"{len(events)} spans over {len(threads)} thread track(s)"
          f" (dropped by ring overwrite: {dropped})")
    peak = max(total for _, total in by_kind.values())
    for (cat, name), (count, total) in sorted(
            by_kind.items(), key=lambda kv: -kv[1][1]):
        mean = total / count if count else 0.0
        label = f"{cat}/{name}"
        print(f"  {label:>26} | {bar(total, peak)} "
              f"{total:.0f} us ({count} spans, mean {mean:.2f} us)")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("mode_or_path",
                    help="'latency', 'timeline', or a CSV path (legacy)")
    ap.add_argument("path", nargs="?", help="input file for latency/timeline")
    ap.add_argument("--metric", default=None,
                    help="CSV column or timeline field (default ops_per_ms)")
    ap.add_argument("--op", default=None,
                    help="latency mode: only this op (insert, contains, ...)")
    ap.add_argument("--percentiles", default="p50,p90,p99,p999",
                    help="latency mode: comma list out of p50,p90,p99,p999")
    args = ap.parse_args()

    for p in (args.path, None if args.mode_or_path in MODES else args.mode_or_path):
        if p and not os.path.exists(p):
            sys.exit(f"error: no such file: {p}")

    metric = args.metric or "ops_per_ms"
    if args.mode_or_path == "latency":
        if not args.path:
            sys.exit("latency mode needs a trials.jsonl path")
        pcts = [p for p in args.percentiles.split(",") if p]
        for p in pcts:
            if p not in PERCENTILE_KEYS:
                sys.exit(f"unknown percentile '{p}' "
                         f"(choose from {','.join(PERCENTILE_KEYS)})")
        render_latency(load_trials(args.path), args.op, pcts)
    elif args.mode_or_path == "timeline":
        if not args.path:
            sys.exit("timeline mode needs a *_timeline.jsonl path")
        render_timeline(args.path, metric)
    elif args.mode_or_path == "scan":
        if not args.path:
            sys.exit("scan mode needs a <id>_hist.json path")
        render_scan(args.path)
    elif args.mode_or_path == "trace":
        if not args.path:
            sys.exit("trace mode needs a <id>_trace.json path")
        render_trace(args.path)
    else:
        render_csv(load_csv(args.mode_or_path, metric), metric)


if __name__ == "__main__":
    try:
        main()
    except BrokenPipeError:  # e.g. piped into head
        sys.exit(0)
