#!/usr/bin/env python3
"""ASCII-plot throughput series from the benches' LSG_CSV output.

Usage:
    LSG_CSV=fig2.csv ./build/bench/bench_fig2_hc_wh
    tools/plot_results.py fig2.csv [--metric ops_per_ms]

Renders one lane per algorithm (thread count on the x axis, bar length
proportional to the metric), which is enough to eyeball the crossovers the
paper's figures show without a plotting stack.
"""

import argparse
import csv
import sys
from collections import defaultdict


def load(path, metric):
    series = defaultdict(list)  # algorithm -> [(threads, value)]
    with open(path, newline="") as f:
        for row in csv.DictReader(f):
            try:
                series[row["algorithm"]].append(
                    (int(row["threads"]), float(row[metric]))
                )
            except (KeyError, ValueError) as e:
                sys.exit(f"bad row in {path}: {e}")
    for points in series.values():
        points.sort()
    return series


def render(series, metric, width=60):
    peak = max(v for pts in series.values() for _, v in pts)
    if peak <= 0:
        sys.exit("nothing to plot")
    print(f"{metric} (full bar = {peak:.1f})")
    for algo in sorted(series):
        print(f"\n{algo}")
        for threads, value in series[algo]:
            bar = "#" * max(1, round(width * value / peak))
            print(f"  {threads:>4} | {bar} {value:.1f}")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("csv_path")
    ap.add_argument("--metric", default="ops_per_ms")
    args = ap.parse_args()
    render(load(args.csv_path, args.metric), args.metric)


if __name__ == "__main__":
    main()
