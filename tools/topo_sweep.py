#!/usr/bin/env python3
"""Simulated-topology validation grid (PR 9).

Re-runs the socket-affine workload suite over a grid of simulated machine
shapes (socket count x remote NUMA distance) using lsg_cli's topology
override flags, and asserts the cross-PR locality invariants on every
grid point:

  I1  every worker pinned: pinned_threads == threads
  I2  a single-socket machine has no remote traffic at all:
      remote_cas_per_op == remote_reads_per_op == 0 (exactly)
  I3  CAS locality fraction local/(local+remote) is a valid fraction and,
      on multi-socket points with socket-affine traffic, stays above a
      floor (the PR 6 claim: affine traffic localizes)
  I4  the NUMA-sharded tier (PR 6) is at least as CAS-local as the
      unsharded layered map on the same grid point, minus a small margin
  I5  the fat-leaf tier (PR 8) touches no more cache lines per op than
      the pointer-chased layered map, within a margin

Any violation prints a FAIL line and the process exits nonzero, so CI can
gate on it directly.  Results additionally land in --out as JSONL (one
record per trial, lsg-trial-v6 schema) for offline comparison.

Usage:
  python3 tools/topo_sweep.py --cli build/bench/lsg_cli            # 2x2 grid
  python3 tools/topo_sweep.py --cli build/bench/lsg_cli \
      --sockets 1,2,4 --remote-dists 21,40 --threads 8 --duration 400
"""

import argparse
import json
import os
import subprocess
import sys

# Margins for the comparative invariants.  Trials are short and CI
# machines are noisy; these catch inversions, not percentage points.
AFFINE_LOCALITY_FLOOR = 0.50   # I3: affine traffic must be majority-local
SHARDED_MARGIN = 0.10          # I4: sharded >= unsharded - margin
LEAF_LINES_MARGIN = 1.25       # I5: leaf lines/op <= layered * margin


def run_trial(cli, algo, sockets, remote, args, extra=None):
    """One lsg_cli run on a simulated machine; returns the trial record."""
    out = os.path.join(args.out_dir, "sweep.jsonl")
    cmd = [
        cli, "-a", algo,
        "-t", str(args.threads),
        "-d", str(args.duration),
        "-r", str(args.key_space),
        "-s", str(args.seed),
        "--dist", "affine",
        "--sockets", str(sockets),
        "--smt", str(args.smt),
        "--local-dist", "10",
        "--remote-dist", str(remote),
        "--json", out,
    ]
    if extra:
        cmd += extra
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout + proc.stderr)
        raise RuntimeError(
            f"{algo} @ sockets={sockets} remote={remote}: "
            f"lsg_cli exited {proc.returncode}")
    with open(out) as f:
        rec = json.loads(f.read().splitlines()[-1])
    if rec.get("schema") != "lsg-trial-v6":
        raise RuntimeError(f"unexpected trial schema: {rec.get('schema')}")
    return rec


def cas_locality(rec):
    local = rec["local_cas_per_op"]
    remote = rec["remote_cas_per_op"]
    total = local + remote
    return 1.0 if total == 0 else local / total


class Checker:
    def __init__(self):
        self.failures = []
        self.checks = 0

    def expect(self, cond, point, message):
        self.checks += 1
        if not cond:
            self.failures.append(f"[{point}] {message}")
            print(f"  FAIL {message}")
        return cond


def check_point(chk, sockets, remote, recs):
    """Assert I1..I5 on one grid point. recs: algo -> trial record."""
    point = f"sockets={sockets} remote={remote}"
    for algo, rec in recs.items():
        chk.expect(rec["pinned_threads"] == rec["threads"], point,
                   f"I1 {algo}: pinned {rec['pinned_threads']} != "
                   f"threads {rec['threads']}")
        chk.expect(rec["total_ops"] > 0, point, f"I1 {algo}: trial ran dry")
        loc = cas_locality(rec)
        chk.expect(0.0 <= loc <= 1.0, point,
                   f"I3 {algo}: cas locality {loc} outside [0, 1]")
        if sockets == 1:
            chk.expect(rec["remote_cas_per_op"] == 0, point,
                       f"I2 {algo}: remote CAS on a 1-socket machine "
                       f"({rec['remote_cas_per_op']}/op)")
            chk.expect(rec["remote_reads_per_op"] == 0, point,
                       f"I2 {algo}: remote reads on a 1-socket machine "
                       f"({rec['remote_reads_per_op']}/op)")

    if sockets > 1:
        sharded = recs["sharded_layered_sg"]
        layered = recs["layered_map_sg"]
        chk.expect(cas_locality(sharded) >= AFFINE_LOCALITY_FLOOR, point,
                   f"I3 sharded: affine locality "
                   f"{cas_locality(sharded):.3f} < {AFFINE_LOCALITY_FLOOR}")
        chk.expect(
            cas_locality(sharded) >= cas_locality(layered) - SHARDED_MARGIN,
            point,
            f"I4: sharded locality {cas_locality(sharded):.3f} < "
            f"layered {cas_locality(layered):.3f} - {SHARDED_MARGIN}")

    leaf = recs["leaf_layered_sg"]
    layered = recs["layered_map_sg"]
    if leaf["lines_per_op"] > 0 and layered["lines_per_op"] > 0:
        chk.expect(
            leaf["lines_per_op"] <= layered["lines_per_op"] * LEAF_LINES_MARGIN,
            point,
            f"I5: leaf lines/op {leaf['lines_per_op']:.2f} > "
            f"layered {layered['lines_per_op']:.2f} * {LEAF_LINES_MARGIN}")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--cli", default="build/bench/lsg_cli",
                    help="path to the lsg_cli binary")
    ap.add_argument("--sockets", default="1,2",
                    help="comma-separated socket counts (default 1,2)")
    ap.add_argument("--remote-dists", default="21,40",
                    help="comma-separated remote NUMA distances")
    ap.add_argument("--threads", type=int, default=8)
    ap.add_argument("--smt", type=int, default=2)
    ap.add_argument("--duration", type=int, default=300,
                    help="per-trial measured milliseconds")
    ap.add_argument("--key-space", default=str(1 << 16))
    ap.add_argument("--seed", type=int, default=42)
    ap.add_argument("--out-dir", default="topo_sweep_out")
    args = ap.parse_args()

    sockets_grid = [int(s) for s in args.sockets.split(",") if s]
    remote_grid = [int(r) for r in args.remote_dists.split(",") if r]
    if len(sockets_grid) * len(remote_grid) < 2:
        ap.error("grid must have at least 2 points")
    os.makedirs(args.out_dir, exist_ok=True)

    algos = ["layered_map_sg", "sharded_layered_sg", "leaf_layered_sg"]
    chk = Checker()
    for sockets in sockets_grid:
        for remote in remote_grid:
            print(f"== grid point: sockets={sockets} remote-dist={remote} "
                  f"({args.threads} threads, affine keys)")
            recs = {}
            for algo in algos:
                extra = []
                if algo == "sharded_layered_sg":
                    # Range-routed shards, one per simulated socket: the
                    # configuration the PR 6 locality claim is stated for.
                    extra = ["--shards", str(max(2, sockets)),
                             "--shard-policy", "range"]
                recs[algo] = run_trial(args.cli, algo, sockets, remote,
                                       args, extra)
                print(f"  {algo:20s} {recs[algo]['ops_per_ms']:10.1f} ops/ms"
                      f"  cas-local {cas_locality(recs[algo]):.3f}"
                      f"  lines/op {recs[algo]['lines_per_op']:.2f}")
            check_point(chk, sockets, remote, recs)

    print(f"\n{chk.checks} invariant checks over "
          f"{len(sockets_grid) * len(remote_grid)} grid points; "
          f"{len(chk.failures)} failure(s)")
    if chk.failures:
        for f in chk.failures:
            print(f"  {f}")
        return 1
    print("topology grid: all locality invariants hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
