#!/usr/bin/env python3
"""Compare two google-benchmark JSON result sets and flag regressions.

Usage:
  tools/compare_bench.py BEFORE.json AFTER.json [--threshold 0.10]
  tools/compare_bench.py BENCH_pr3.json AFTER.json   # {before,after} wrapper

Inputs are either raw google-benchmark JSON files (--benchmark_out) or a
wrapper object {"before": <gbench json>, "after": <gbench json>} like the
committed BENCH_*.json baselines; for a wrapper passed as BEFORE, its
"before" member is used (pass the same wrapper as AFTER to use its "after"
member — i.e. `compare_bench.py BENCH_pr3.json BENCH_pr3.json` rechecks the
committed pair).

Prints a per-benchmark real_time delta table and exits non-zero when any
shared benchmark regressed by more than the threshold (default +10%).
Stdlib only — no pip dependencies.
"""

import argparse
import json
import sys


def load_times(path, member):
    """-> {benchmark name: real_time ns} from a gbench file or wrapper."""
    with open(path) as f:
        doc = json.load(f)
    if "benchmarks" not in doc:
        if member in doc and "benchmarks" in doc[member]:
            doc = doc[member]
        else:
            raise SystemExit(
                f"{path}: neither a google-benchmark JSON file nor a "
                f"{{before,after}} wrapper with a '{member}' member"
            )
    times = {}
    for b in doc["benchmarks"]:
        if b.get("run_type", "iteration") != "iteration":
            continue  # skip aggregate rows (mean/median/stddev)
        t = float(b["real_time"])
        # With --benchmark_repetitions=N the same name appears N times;
        # keep the minimum — the stable statistic on noisy machines (the
        # committed baselines are per-benchmark minima too).
        times[b["name"]] = min(times.get(b["name"], t), t)
    return times


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("before", help="baseline gbench JSON (or {before,after} wrapper)")
    ap.add_argument("after", help="candidate gbench JSON (or {before,after} wrapper)")
    ap.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="relative real_time increase treated as a regression "
        "(default 0.10 = +10%%)",
    )
    args = ap.parse_args()

    before = load_times(args.before, "before")
    after = load_times(args.after, "after")

    shared = sorted(set(before) & set(after))
    if not shared:
        raise SystemExit("no benchmark names in common; nothing to compare")

    width = max(len(n) for n in shared)
    print(f"{'benchmark':{width}}  {'before':>12}  {'after':>12}  {'delta':>8}")
    regressions = []
    for name in shared:
        b, a = before[name], after[name]
        delta = (a - b) / b if b else 0.0
        flag = ""
        if delta > args.threshold:
            flag = "  << REGRESSION"
            regressions.append((name, delta))
        print(f"{name:{width}}  {b:12.1f}  {a:12.1f}  {delta:+7.1%}{flag}")

    only_before = sorted(set(before) - set(after))
    only_after = sorted(set(after) - set(before))
    if only_before:
        print(f"missing from after: {', '.join(only_before)}")
    if only_after:
        print(f"new in after: {', '.join(only_after)}")

    if regressions:
        print(
            f"\n{len(regressions)} benchmark(s) regressed more than "
            f"{args.threshold:+.0%}:",
            file=sys.stderr,
        )
        for name, delta in regressions:
            print(f"  {name}: {delta:+.1%}", file=sys.stderr)
        return 1
    print(f"\nOK: no benchmark regressed more than {args.threshold:+.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
