#!/usr/bin/env python3
"""Compare two google-benchmark JSON result sets and flag regressions.

Usage:
  tools/compare_bench.py BEFORE.json AFTER.json [--threshold 0.10]
  tools/compare_bench.py BENCH_pr8.json AFTER.json   # {before,after} wrapper
  tools/compare_bench.py BASE.json AFTER.json \\
      --tolerance 'BM_LeafLayered*=0.25' --tolerance BM_Xoshiro=0.50

Inputs are either raw google-benchmark JSON files (--benchmark_out) or a
wrapper object {"before": <gbench json>, "after": <gbench json>} like the
committed BENCH_*.json baselines; for a wrapper passed as BEFORE, its
"before" member is used (pass the same wrapper as AFTER to use its "after"
member — i.e. `compare_bench.py BENCH_pr8.json BENCH_pr8.json` rechecks the
committed pair).

Prints a per-benchmark real_time delta table. The exit status is nonzero
ONLY for genuine regressions: a benchmark present in both files whose
real_time grew past its tolerance (--tolerance glob override, else
--threshold). Benchmarks with no baseline entry ("no baseline for <name>")
and baseline entries with no candidate run are reported but never fail the
comparison — renaming or adding benchmarks must not break CI.
Stdlib only — no pip dependencies.
"""

import argparse
import fnmatch
import json
import sys


def load_times(path, member):
    """-> {benchmark name: real_time ns} from a gbench file or wrapper."""
    with open(path) as f:
        doc = json.load(f)
    if "benchmarks" not in doc:
        if member in doc and "benchmarks" in doc[member]:
            doc = doc[member]
        else:
            raise SystemExit(
                f"{path}: neither a google-benchmark JSON file nor a "
                f"{{before,after}} wrapper with a '{member}' member"
            )
    times = {}
    for b in doc["benchmarks"]:
        if b.get("run_type", "iteration") != "iteration":
            continue  # skip aggregate rows (mean/median/stddev)
        t = float(b["real_time"])
        # With --benchmark_repetitions=N the same name appears N times;
        # keep the minimum — the stable statistic on noisy machines (the
        # committed baselines are per-benchmark minima too).
        times[b["name"]] = min(times.get(b["name"], t), t)
    return times


def parse_tolerances(specs):
    """['GLOB=0.25', ...] -> [(glob, 0.25), ...], first match wins."""
    out = []
    for spec in specs:
        pattern, eq, value = spec.rpartition("=")
        if not eq or not pattern:
            raise SystemExit(
                f"--tolerance {spec!r}: expected GLOB=FRACTION "
                "(e.g. 'BM_LeafLayered*=0.25')"
            )
        try:
            frac = float(value)
        except ValueError:
            raise SystemExit(f"--tolerance {spec!r}: {value!r} is not a number")
        if frac < 0:
            raise SystemExit(f"--tolerance {spec!r}: fraction must be >= 0")
        out.append((pattern, frac))
    return out


def tolerance_for(name, overrides, default):
    for pattern, frac in overrides:
        if fnmatch.fnmatchcase(name, pattern):
            return frac
    return default


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("before", help="baseline gbench JSON (or {before,after} wrapper)")
    ap.add_argument("after", help="candidate gbench JSON (or {before,after} wrapper)")
    ap.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="relative real_time increase treated as a regression "
        "(default 0.10 = +10%%)",
    )
    ap.add_argument(
        "--tolerance",
        action="append",
        default=[],
        metavar="GLOB=FRACTION",
        help="per-benchmark override of --threshold; glob matched against "
        "the benchmark name, first match wins (repeatable)",
    )
    args = ap.parse_args()
    overrides = parse_tolerances(args.tolerance)

    before = load_times(args.before, "before")
    after = load_times(args.after, "after")

    shared = sorted(set(before) & set(after))
    no_baseline = sorted(set(after) - set(before))
    not_rerun = sorted(set(before) - set(after))

    if not shared:
        # A disjoint pair means the candidate suite has no committed
        # baseline yet (new bench binary, renamed roster). That is a
        # coverage note, not a regression — report and succeed.
        for name in no_baseline:
            print(f"no baseline for {name} — skipped (not in {args.before})")
        print(
            f"\nOK: no benchmark names in common between {args.before} and "
            f"{args.after}; nothing to compare (not a regression)"
        )
        return 0

    width = max(len(n) for n in shared)
    print(
        f"{'benchmark':{width}}  {'before':>12}  {'after':>12}  {'delta':>8}"
        f"  {'tol':>6}"
    )
    regressions = []
    for name in shared:
        b, a = before[name], after[name]
        tol = tolerance_for(name, overrides, args.threshold)
        delta = (a - b) / b if b else 0.0
        flag = ""
        if delta > tol:
            flag = "  << REGRESSION"
            regressions.append((name, delta, tol))
        print(
            f"{name:{width}}  {b:12.1f}  {a:12.1f}  {delta:+7.1%}"
            f"  {tol:5.0%}{flag}"
        )

    for name in no_baseline:
        print(f"no baseline for {name} — skipped (not in {args.before})")
    if not_rerun:
        print(f"baseline-only (not re-run): {', '.join(not_rerun)}")

    if regressions:
        print(
            f"\n{len(regressions)} benchmark(s) regressed past tolerance:",
            file=sys.stderr,
        )
        for name, delta, tol in regressions:
            print(f"  {name}: {delta:+.1%} (tolerance {tol:+.0%})", file=sys.stderr)
        return 1
    print(f"\nOK: no benchmark regressed past its tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
